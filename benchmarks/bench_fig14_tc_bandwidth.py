"""Figure 14: bandwidth timelines of two jobs under traffic classes.

Paper (tapered Malbec, two bisection-bandwidth jobs, the second starting
later): in the same class, the bandwidth is split fairly while both run
and the survivor ramps to 100% when the first job ends; with TC1
guaranteed 80% and TC2 guaranteed 10%, the observed split is 80/20 —
the unreserved 10% goes to the class with the lowest share — and the
survivor again takes everything at the end.

Reproduced twice: exactly with the fluid model, and approximately with
the packet simulator (rate meters over the global links).
"""

import numpy as np

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.core.traffic_classes import TrafficClass
from repro.flowsim import FluidBottleneck, FluidJob
from repro.network.fabric import LinkSpec
from repro.network.units import KiB, MS, US, gbps
from repro.sim import RateMeter
from repro.mpi import MpiWorld
from repro.workloads import split_nodes

CLASSES = [
    TrafficClass("tc1", min_share=0.8),
    TrafficClass("tc2", min_share=0.1),
]


def test_fig14_fluid_timeline(benchmark, report):
    def run_fluid():
        bn = FluidBottleneck(10.0, CLASSES)
        j1 = bn.add_job(FluidJob(start_ns=0.0, nbytes=200.0, tc=0, name="job1"))
        j2 = bn.add_job(FluidJob(start_ns=5.0, nbytes=150.0, tc=1, name="job2"))
        bn.run()
        return j1, j2

    j1, j2 = run_once(benchmark, run_fluid)
    probes = [2.0, 6.0, 26.0]
    rows = [
        [f"t={t:g}", f"{j1.rate_at(t):.2f}", f"{j2.rate_at(t):.2f}"] for t in probes
    ]
    table = render_table(
        ["time", "job1 (TC1 min 80%)", "job2 (TC2 min 10%)"],
        rows,
        title="Fig. 14 (bottom) — fluid rates on a capacity-10 bottleneck",
    )
    report(table)
    save_result("fig14_fluid", table)

    assert j1.rate_at(2.0) == 10.0  # alone: everything
    assert abs(j1.rate_at(6.0) - 8.0) < 1e-6  # 80%
    assert abs(j2.rate_at(6.0) - 2.0) < 1e-6  # 10% + spare 10%
    # after job1 finishes, job2 ramps to the full capacity
    t_after = (j1.finished_at or 0) + 1.0
    assert j2.rate_at(t_after) == 10.0


def test_fig14_same_class_fair_share_fluid(benchmark, report):
    def run_fluid():
        bn = FluidBottleneck(10.0, [TrafficClass("tc1")])
        j1 = bn.add_job(FluidJob(start_ns=0.0, nbytes=200.0, name="job1"))
        j2 = bn.add_job(FluidJob(start_ns=5.0, nbytes=150.0, name="job2"))
        bn.run()
        return j1, j2

    j1, j2 = run_once(benchmark, run_fluid)
    table = render_table(
        ["time", "job1", "job2"],
        [
            ["t=2", f"{j1.rate_at(2.0):.2f}", f"{j2.rate_at(2.0):.2f}"],
            ["t=6", f"{j1.rate_at(6.0):.2f}", f"{j2.rate_at(6.0):.2f}"],
        ],
        title="Fig. 14 (top) — same traffic class: fair 50/50 share",
    )
    report(table)
    save_result("fig14_same_class", table)
    assert j1.rate_at(6.0) == j2.rate_at(6.0) == 5.0


def test_fig14_packet_simulation_cross_check(benchmark, report):
    """The packet fabric's DRR scheduler must honour the same 80/20 split
    on a contended wire."""
    _, malbec, _ = get_systems()
    taper = LinkSpec(gbps(200) * 0.25, 300.0, 48 * KiB)
    config = malbec(classes=CLASSES, global_link=taper)

    def run_des():
        fabric = config.build()
        nodes1, nodes2 = split_nodes(list(range(32)), 16, "interleaved")
        meters = {0: RateMeter(50 * US), 1: RateMeter(50 * US)}

        def stream_job(world, tc, start_ns, n_msgs):
            def main(rank):
                yield start_ns
                # saturate: cross-group streams from group 0/1 to group 2/3
                dst = (rank.rank % world.size)
                target = rank.world.nodes[dst] + 40  # nodes in far groups
                for i in range(n_msgs):
                    msg_done = rank.world.fabric.transfer(
                        rank.node, target % 80, 64 * KiB, tc=tc
                    )
                    m = yield msg_done
                    meters[tc].add(rank.sim.now, m.nbytes)

            return main

        w1 = MpiWorld(fabric, nodes1, tc=0)
        w2 = MpiWorld(fabric, nodes2, tc=1)
        w1.spawn(stream_job(w1, 0, 0.0, 150))
        w2.spawn(stream_job(w2, 1, 0.3 * MS, 150))
        fabric.sim.run(until=4 * MS)
        return meters

    meters = run_once(benchmark, run_des)
    # Share while both classes are demanding (window 3-5 ms).
    def rate_in(meter, lo, hi):
        mids, rates = meter.series()
        sel = (mids >= lo) & (mids <= hi)
        return float(np.mean(rates[sel])) if sel.any() else 0.0

    r1 = rate_in(meters[0], 0.6 * MS, 1.5 * MS)
    r2 = rate_in(meters[1], 0.6 * MS, 1.5 * MS)
    assert r1 > 0 and r2 > 0, "both jobs must be active in the window"
    share2 = r2 / (r1 + r2)
    table = render_table(
        ["class", "rate (B/ns)", "share", "paper"],
        [
            ["TC1 (min 80%)", f"{r1:.2f}", f"{1 - share2:.0%}", "80%"],
            ["TC2 (min 10%)", f"{r2:.2f}", f"{share2:.0%}", "20%"],
        ],
        title="Fig. 14 — packet-level share on the contended fabric",
    )
    report(table)
    save_result("fig14_des", table)
    # TC2 ends up close to its 10% + spare 10%, well below fair share.
    assert 0.1 < share2 < 0.4


if __name__ == "__main__":  # pragma: no cover
    pass
