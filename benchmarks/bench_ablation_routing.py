"""Ablation: routing policy under intermediate congestion.

The paper attributes the all-to-all aggressor's harmlessness (Fig. 9) to
adaptive routing "successfully routing the packets around the congested
links".  This bench makes that causal: the same all-to-all aggressor is
run against minimal-only, Valiant, and adaptive routing on otherwise
identical Slingshot systems, and against a single-link hotspot where the
differences are starkest.
"""

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.core.adaptive_routing import AdaptiveRouter, MinimalRouter, ValiantRouter
from repro.network.units import KiB, MS
from repro.workloads import (
    allreduce_bench,
    alltoall_congestor,
    congestion_impact,
    split_nodes,
)

NODES = list(range(64))
ROUTERS = {
    "minimal": MinimalRouter,
    "valiant": ValiantRouter,
    "adaptive": AdaptiveRouter,
}


def _hotspot_finish(config):
    """Drain time of a many-stream hotspot between two switches."""
    fabric = config.build()
    topo = fabric.topology
    msgs = []
    for _ in range(30):
        for s in topo.nodes_on_switch(0):
            for d in topo.nodes_on_switch(1):
                msgs.append(fabric.send(s, d, 16 * KiB))
    fabric.sim.run()
    assert all(m.complete for m in msgs)
    return max(m.complete_time for m in msgs)


def test_ablation_routing_policies(benchmark, report):
    _, malbec, _ = get_systems()

    def run_all():
        out = {}
        victim_nodes, aggressor_nodes = split_nodes(NODES, 32, "interleaved")
        for name, cls in ROUTERS.items():
            cfg = malbec(router_factory=lambda topo, seed, c=cls: c(topo, seed))
            impact = congestion_impact(
                cfg,
                victim_nodes,
                allreduce_bench(8, iterations=6),
                aggressor_nodes,
                alltoall_congestor(),
                max_ns=400 * MS,
            )["impact"]
            hotspot = _hotspot_finish(cfg)
            out[name] = (impact, hotspot)
        return out

    results = run_once(benchmark, run_all)
    rows = [
        [name, f"{results[name][0]:.2f}", f"{results[name][1] / 1e3:.0f}us"]
        for name in ROUTERS
    ]
    table = render_table(
        ["router", "all-to-all aggressor C", "hotspot drain"],
        rows,
        title="Ablation — routing policy (identical Slingshot hardware)",
    )
    report(table)
    save_result("ablation_routing", table)

    # Adaptive handles intermediate congestion at least as well as
    # minimal, and clears the hotspot faster.
    assert results["adaptive"][0] <= results["minimal"][0] * 1.2
    assert results["adaptive"][1] < results["minimal"][1]
    # Valiant also spreads the hotspot but pays on path length; adaptive
    # must not be slower than Valiant under the aggressor.
    assert results["adaptive"][0] <= results["valiant"][0] * 1.2
