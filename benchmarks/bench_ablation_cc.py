"""Ablation: which congestion control protects victims, and when.

Not a figure in the paper, but the experiment behind its §II-D
argument: per-pair, per-ack control (Slingshot) vs a slow ECN-style loop
vs nothing (Aries' effective configuration), all on identical Slingshot
hardware so only the algorithm differs.  Persistent and bursty incast
are measured separately because the slow loop converges eventually —
its weakness is the transient.
"""

import numpy as np

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.network.units import KiB, MS, US
from repro.workloads import (
    allreduce_bench,
    bursty_incast_congestor,
    congestion_impact,
    incast_congestor,
    split_nodes,
)

NODES = list(range(64))
CCS = ["slingshot", "ecn", "none"]


def _impacts(config_factory):
    victim_nodes, aggressor_nodes = split_nodes(NODES, 32, "random", seed=3)
    out = {}
    for cc in CCS:
        cfg = config_factory(cc=cc)
        persistent = congestion_impact(
            cfg,
            victim_nodes,
            allreduce_bench(8, iterations=6),
            aggressor_nodes,
            incast_congestor(),
            max_ns=400 * MS,
        )["impact"]
        bursty = congestion_impact(
            cfg,
            victim_nodes,
            allreduce_bench(8, iterations=6),
            aggressor_nodes,
            bursty_incast_congestor(
                message_bytes=128 * KiB, burst_size=64, gap_ns=200 * US
            ),
            warmup_ns=0.0,
            max_ns=400 * MS,
        )["impact"]
        out[cc] = (persistent, bursty)
    return out

def test_ablation_congestion_control(benchmark, report):
    _, malbec, _ = get_systems()
    results = run_once(benchmark, lambda: _impacts(malbec))
    rows = [
        [cc, f"{results[cc][0]:.2f}", f"{results[cc][1]:.2f}"] for cc in CCS
    ]
    table = render_table(
        ["congestion control", "persistent incast C", "bursty incast C"],
        rows,
        title="Ablation — CC algorithm on identical Slingshot hardware",
    )
    report(table)
    save_result("ablation_cc", table)

    # No endpoint CC: tree saturation, order-of-magnitude damage.
    assert results["none"][0] > 5 * results["slingshot"][0]
    # Slingshot tames persistent incast almost completely.
    assert results["slingshot"][0] < 1.5
    # The slow loop is never better than the per-ack loop, and the gap
    # does not vanish for bursts (the paper's transient argument).
    assert results["ecn"][0] >= results["slingshot"][0] * 0.95
    assert results["ecn"][1] >= results["slingshot"][1] * 0.95
