"""Figure 9: the congestion-impact heatmap, Aries vs Slingshot.

Paper (512 nodes, linear allocation, 1 PPN): Aries victims suffer up to
93x under incast, growing with the aggressor's node share; Slingshot's
worst cell is 1.3x; the all-to-all aggressor is absorbed by adaptive
routing on both networks; applications suffer less than microbenchmarks
because compute phases dilute the damage.

Bench scale: the mini systems (same group structure), a trimmed victim
column set (one small + one large size per microbenchmark), and 64
booked nodes.  Shapes — who wins, direction of growth, which aggressor
matters — are asserted; magnitudes are reported for EXPERIMENTS.md.
"""

import numpy as np

from conftest import get_systems, run_once, save_result
from heatmap_common import app_victims, micro_victims, run_heatmap
from repro.analysis import render_heatmap

NODES = list(range(64))


def _run_for(config):
    victims = {**app_victims(), **micro_victims()}
    return run_heatmap(config, victims, NODES, policy="linear", jobs=None)


def test_fig09_heatmap_aries(benchmark, report):
    crystal, _, _ = get_systems()
    rows, cols, values = run_once(benchmark, lambda: _run_for(crystal()))
    table = render_heatmap(
        rows, cols, values, title="Fig. 9 (top) — Aries congestion impact, linear"
    )
    report(table)
    save_result("fig09_aries", table)

    arr = np.array(values)
    a2a, incast = arr[:3], arr[3:]
    # Incast is the damaging pattern on Aries (order of magnitude), and
    # grows with the aggressor share.
    assert incast.max() > 10.0
    assert incast[2].max() >= incast[0].max() * 0.5  # 90% row is severe
    # The all-to-all aggressor is absorbed by adaptive routing.
    assert a2a.max() < 3.0
    # Applications (first 9 columns) are diluted by compute relative to
    # the worst microbenchmarks.
    assert incast[:, :9].max() <= incast.max()


def test_fig09_heatmap_slingshot(benchmark, report):
    _, malbec, _ = get_systems()
    rows, cols, values = run_once(benchmark, lambda: _run_for(malbec()))
    table = render_heatmap(
        rows, cols, values, title="Fig. 9 (bottom) — Slingshot congestion impact, linear"
    )
    report(table)
    save_result("fig09_slingshot", table)

    arr = np.array(values)
    # Paper: worst Slingshot cell is 1.3x at 512 nodes.  Allow modest
    # slack for mini-scale noise.
    assert arr.max() < 2.0
    assert np.median(arr) < 1.1
