"""Figure 4: latency and bandwidth vs node distance on a quiet system.

Paper: going from same-switch to different-group placement costs at most
~40% extra latency for 8 B messages, under 10% beyond 16 KiB, and under
15% bandwidth across all sizes — the low diameter makes placement almost
irrelevant.  (Cross-group pairs can even see slightly *higher* bandwidth
thanks to the extra path diversity.)
"""

from conftest import get_systems, run_once, save_result
from repro.analysis import quartile_whiskers, render_table
from repro.mpi import MpiWorld
from repro.network.units import KiB, MiB, to_gbps

SIZES = [8, 1 * KiB, 128 * KiB, 4 * MiB]
REPS = 12


def _distance_pairs(fabric):
    """(label, node pair) for 1, 2 and 3 inter-switch hops."""
    topo = fabric.topology
    p = topo.params.hosts_per_switch
    pairs = {
        "same switch": (0, 1),
        "different switches": (0, p * 1),  # switch 1, same group
        "different groups": (0, next(iter(topo.nodes_in_group(1)))),
    }
    for label, (a, b) in pairs.items():
        expect = {"same switch": 1, "different switches": 2, "different groups": 3}
        assert fabric.node_distance(a, b) == expect[label]
    return pairs


def _pingpong_half_rtt(config, pair, nbytes, reps=REPS):
    fabric = config.build()
    world = MpiWorld(fabric, nodes=list(pair))
    samples = []

    def main(rank):
        for it in range(reps):
            if rank.rank == 0:
                t0 = rank.sim.now
                yield rank.send(1, nbytes, tag=it)
                yield rank.recv(1, tag=it)
                samples.append((rank.sim.now - t0) / 2)
            else:
                yield rank.recv(0, tag=it)
                yield rank.send(0, nbytes, tag=it)

    world.spawn(main)
    fabric.sim.run()
    return samples


def test_fig04_latency_and_bandwidth_vs_distance(benchmark, report):
    _, malbec, _ = get_systems()
    config = malbec()

    def run_experiment():
        fabric = config.build()
        pairs = _distance_pairs(fabric)
        out = {}
        for size in SIZES:
            for label, pair in pairs.items():
                out[(size, label)] = _pingpong_half_rtt(config, pair, size)
        return out, list(pairs)

    data, labels = run_once(benchmark, run_experiment)

    rows = []
    medians = {}
    for size in SIZES:
        for label in labels:
            w = quartile_whiskers(data[(size, label)])
            medians[(size, label)] = w["median"]
            bw = to_gbps(size / w["median"])
            rows.append(
                [
                    f"{size}B" if size < KiB else f"{size // KiB}KiB",
                    label,
                    f"{w['median'] / 1e3:.2f}us",
                    f"{w['q1'] / 1e3:.2f}/{w['q3'] / 1e3:.2f}",
                    f"{bw:.2f}Gb/s",
                ]
            )
    table = render_table(
        ["size", "distance", "median RTT/2", "Q1/Q3 (us)", "effective bw"],
        rows,
        title="Fig. 4 — latency/bandwidth vs node distance (isolated)",
    )
    report(table)
    save_result("fig04_node_distance", table)

    # Shape assertions (paper's claims):
    for size in SIZES:
        near = medians[(size, "same switch")]
        far = medians[(size, "different groups")]
        assert far >= near  # farther is never faster in latency
    # 8B: bounded placement penalty (paper: ~40%; we allow a bit more
    # because our base has no per-hop software jitter to amortize it)
    spread_8b = medians[(8, "different groups")] / medians[(8, "same switch")]
    assert spread_8b < 1.8
    # >= 128 KiB: placement nearly irrelevant (paper: <10-15%)
    for size in (128 * KiB, 4 * MiB):
        spread = medians[(size, "different groups")] / medians[(size, "same switch")]
        assert spread < 1.15


def test_fig04_large_message_bandwidth_near_line_rate(benchmark, report):
    """Paper: ~97 Gb/s at 4 MiB on the 100 Gb/s ConnectX-5 NICs."""
    _, malbec, _ = get_systems()
    config = malbec()

    def measure():
        fabric = config.build()
        pair = (0, next(iter(fabric.topology.nodes_in_group(1))))
        msg = fabric.send(pair[0], pair[1], 4 * MiB)
        fabric.sim.run()
        return 4 * MiB / (msg.complete_time - msg.submit_time)

    bw = run_once(benchmark, measure)
    gbps_measured = to_gbps(bw)
    table = render_table(
        ["quantity", "measured", "paper"],
        [["4MiB stream bandwidth", f"{gbps_measured:.1f} Gb/s", "97.0-97.8 Gb/s"]],
        title="Fig. 4 — large-message bandwidth",
    )
    report(table)
    save_result("fig04_line_rate", table)
    assert 85.0 < gbps_measured <= 100.0
