"""Figure 13: traffic classes protect a latency-sensitive collective.

Paper (Malbec tapered to 25% bandwidth, two 64-node jobs interleaved):
an 8 B MPI_Allreduce co-running with a 256 KiB MPI_Alltoall suffers
2.85x in the same traffic class but only 1.15x in a separate class.
"""

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.core.traffic_classes import TrafficClass
from repro.network.fabric import LinkSpec
from repro.network.units import KiB, MS, gbps
from repro.workloads import alltoall_congestor, run_workload, split_nodes

NODES = list(range(64))


def _config(sys_factory):
    classes = [
        TrafficClass("latency", priority=1, min_share=0.25, max_share=0.5),
        TrafficClass("bulk", priority=0, min_share=0.25),
    ]
    # the paper tapers the network to 25% of its bandwidth
    taper = LinkSpec(gbps(200) * 0.25, 300.0, 48 * KiB)
    return sys_factory(classes=classes, global_link=taper)


def _allreduce_victim(iterations=8):
    def main(rank, record):
        for it in range(iterations):
            t0 = rank.sim.now
            yield from rank.allreduce(8)
            record(it, rank.sim.now - t0)

    main.name = "allreduce-8B"
    return main


def _scenario(config, victim_nodes, bully_nodes, aggressor_tc):
    return run_workload(
        config,
        victim_nodes,
        _allreduce_victim(),
        aggressor_nodes=bully_nodes,
        aggressor=alltoall_congestor(256 * KiB),
        aggressor_ppn=2,
        victim_tc=0,
        aggressor_tc=aggressor_tc,
        warmup_ns=0.5 * MS,
        max_ns=300 * MS,
    ).mean()


def test_fig13_traffic_class_isolation(benchmark, report):
    _, malbec, _ = get_systems()
    config = _config(malbec)
    victim_nodes, bully_nodes = split_nodes(NODES, 32, "interleaved")

    def run_all():
        isolated = run_workload(
            config, victim_nodes, _allreduce_victim(), max_ns=300 * MS
        ).mean()
        same = _scenario(config, victim_nodes, bully_nodes, aggressor_tc=0)
        separate = _scenario(config, victim_nodes, bully_nodes, aggressor_tc=1)
        return isolated, same, separate

    isolated, same, separate = run_once(benchmark, run_all)
    impact_same = same / isolated
    impact_separate = separate / isolated
    table = render_table(
        ["scenario", "allreduce time", "impact", "paper"],
        [
            ["isolated", f"{isolated / 1e3:.1f}us", "1.00x", "1.00x"],
            ["same TC as alltoall", f"{same / 1e3:.1f}us", f"{impact_same:.2f}x", "2.85x"],
            ["separate TC", f"{separate / 1e3:.1f}us", f"{impact_separate:.2f}x", "1.15x"],
        ],
        title="Fig. 13 — 8B allreduce vs 256KiB alltoall (tapered Malbec)",
    )
    report(table)
    save_result("fig13_traffic_classes", table)

    # Shape: sharing a class hurts; a separate class restores most of it.
    assert impact_same > 1.5
    assert impact_separate < 0.6 * impact_same
    assert impact_separate < 1.6
