"""Figure 10: congestion-impact distributions across allocation policies,
PPN, and node count.

Paper: (A) at 512 nodes / 1 PPN, Aries worst-case impacts are 92 /
144 / 154 for linear / interleaved / random while Slingshot stays
<= 1.8 / 2.3; (B) raising the aggressor to 24 PPN pushes Aries to 424
while Slingshot stays <= 2.6 (~200x apart); (C) at 128 nodes both
improve (Aries <= 40-43, Slingshot <= 1.5) because less traffic is
generated and more global bandwidth is available per node.
"""

from functools import partial

import numpy as np

from conftest import get_systems, run_once, save_result
from heatmap_common import run_heatmap
from repro.analysis import render_table
from repro.network.units import KiB
from repro.workloads import allreduce_bench, alltoall_bench, pingpong

NODES = list(range(64))
SMALL_NODES = list(range(24))


def _victims():
    """A small victim panel for the distribution plots."""
    return {
        "allreduce-8B": partial(allreduce_bench, 8, iterations=6),
        "alltoall-128K": partial(alltoall_bench, 128 * KiB, iterations=2),
        "pingpong-8B": partial(pingpong, 8, iterations=6),
    }


def _panel(config, nodes, policy, ppn):
    _, _, values = run_heatmap(
        config, _victims(), nodes, policy=policy, ppn=ppn, jobs=None
    )
    return [v for row in values for v in row]


def _summary_rows(results):
    rows = []
    for label, impacts in results.items():
        arr = np.array(impacts)
        rows.append(
            [
                label,
                f"{np.median(arr):.2f}",
                f"{np.percentile(arr, 90):.2f}",
                f"{arr.max():.2f}",
            ]
        )
    return rows


def test_fig10a_allocation_policies(benchmark, report):
    crystal, malbec, _ = get_systems()

    def run_all():
        out = {}
        for sys_name, cfg_fn in (("aries", crystal), ("slingshot", malbec)):
            for policy in ("linear", "interleaved", "random"):
                out[f"{sys_name}/{policy}"] = _panel(cfg_fn(), NODES, policy, ppn=1)
        return out

    results = run_once(benchmark, run_all)
    table = render_table(
        ["system/allocation", "median C", "p90 C", "max C"],
        _summary_rows(results),
        title="Fig. 10(A) — impact distribution by allocation (1 PPN)",
    )
    report(table)
    save_result("fig10a_allocations", table)

    aries_max = {p: max(results[f"aries/{p}"]) for p in ("linear", "interleaved", "random")}
    ss_max = {p: max(results[f"slingshot/{p}"]) for p in ("linear", "interleaved", "random")}
    # Spread-out allocations are worse than linear on Aries (paper: 92 -> 144/154).
    assert max(aries_max["interleaved"], aries_max["random"]) > aries_max["linear"]
    # Slingshot stays near 1 for every allocation (paper <= 2.3).
    assert max(ss_max.values()) < 2.5
    # The gap between networks is at least an order of magnitude.
    assert max(aries_max.values()) / max(ss_max.values()) > 8


def test_fig10b_higher_ppn(benchmark, report):
    crystal, malbec, _ = get_systems()

    def run_all():
        return {
            "aries/ppn1": _panel(crystal(), NODES, "random", ppn=1),
            "aries/ppn3": _panel(crystal(), NODES, "random", ppn=3),
            "slingshot/ppn3": _panel(malbec(), NODES, "random", ppn=3),
        }

    results = run_once(benchmark, run_all)
    table = render_table(
        ["system/ppn", "median C", "p90 C", "max C"],
        _summary_rows(results),
        title="Fig. 10(B) — impact with a higher-PPN aggressor (random)",
    )
    report(table)
    save_result("fig10b_ppn", table)
    # More processes per aggressor node -> at least as much damage on Aries.
    assert max(results["aries/ppn3"]) >= 0.8 * max(results["aries/ppn1"])
    # Slingshot remains protected even at high PPN (paper: <= 2.6 vs 424).
    assert max(results["slingshot/ppn3"]) < 2.6
    assert max(results["aries/ppn3"]) / max(results["slingshot/ppn3"]) > 8


def test_fig10c_smaller_node_count(benchmark, report):
    crystal, malbec, _ = get_systems()

    def run_all():
        return {
            "aries/64n": _panel(crystal(), NODES, "random", ppn=1),
            "aries/24n": _panel(crystal(), SMALL_NODES, "random", ppn=1),
            "slingshot/24n": _panel(malbec(), SMALL_NODES, "random", ppn=1),
        }

    results = run_once(benchmark, run_all)
    table = render_table(
        ["system/nodes", "median C", "p90 C", "max C"],
        _summary_rows(results),
        title="Fig. 10(C) — impact at a smaller booked-node count (random)",
    )
    report(table)
    save_result("fig10c_nodes", table)
    # Fewer nodes -> less generated traffic -> milder impact (paper: 154 -> 40).
    assert max(results["aries/24n"]) < max(results["aries/64n"])
    assert max(results["slingshot/24n"]) < 2.0
