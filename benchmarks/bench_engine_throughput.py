"""Engine throughput: how fast does the substrate simulate?

Not a paper figure — the capacity check that bounds every other bench:
raw event throughput of the DES core, packet throughput of the fabric
(default event-per-packet mode and opt-in burst batching), and the cost
of one congested heatmap cell.  These numbers are what justify the
mini-scale default (DESIGN.md §1).  Besides the human-readable tables,
each test merges its numbers into ``results/BENCH_engine.json`` for
machine consumption (CI trend lines, the EXPERIMENTS.md perf section).
"""

import time

from conftest import run_once, save_metrics, save_result
from repro.analysis import render_table
from repro.network.units import KiB, MS
from repro.sim import Simulator
from repro.systems import crystal_mini, malbec_mini

#: pkt/s measured for the same 80-node bisection workload at the seed
#: commit (c67e78a), before the hot-path overhaul.  The overhaul's
#: acceptance bar is >= 1.5x this on the same machine class.
SEED_PKT_RATE = 15_700


def test_engine_raw_event_throughput(benchmark, report):
    N = 200_000

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < N:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        t0 = time.perf_counter()
        sim.run()
        return N / (time.perf_counter() - t0)

    rate = run_once(benchmark, run)
    table = render_table(
        ["metric", "value"],
        [["event throughput", f"{rate / 1e6:.2f} M events/s"]],
        title="Engine throughput (self-rescheduling timer chain)",
    )
    report(table)
    save_result("engine_events", table)
    save_metrics("raw_event_throughput", {"events_per_s": rate})
    assert rate > 100_000  # sanity floor


def _bisection_stream(batching: bool, repeats: int = 3):
    """The 80-node bisection workload; returns rates and totals.

    The simulated work is deterministic (identical event count every
    run), so wall clock is taken as the best of *repeats* — the
    standard low-noise estimator for sub-second benchmarks on shared
    machines.
    """
    best = None
    for _ in range(repeats):
        fabric = malbec_mini().with_(burst_batching=batching).build()
        n = fabric.topology.n_nodes
        for i in range(n):
            fabric.send(i, (i + n // 2) % n, 256 * KiB)
        t0 = time.perf_counter()
        fabric.sim.run()
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, fabric.packets_delivered(), fabric.sim.events_processed)
    wall, pkts, events = best
    return {
        "pkt_per_s": pkts / wall,
        "ev_per_s": events / wall,
        "events": events,
        "packets": pkts,
        "wall_s": wall,
    }


def _count_routing_decisions() -> int:
    """Exact route() call count for the bisection workload.

    Runs the identical (deterministic) simulation once with a counting
    shim on the router, so the timed runs stay uninstrumented.
    """
    fabric = malbec_mini().build()
    n = fabric.topology.n_nodes
    count = [0]
    route = fabric.router.route

    def counting(sw, pkt):
        count[0] += 1
        return route(sw, pkt)

    fabric.router.route = counting
    for i in range(n):
        fabric.send(i, (i + n // 2) % n, 256 * KiB)
    fabric.sim.run()
    return count[0]


def test_fabric_packet_throughput(benchmark, report):
    def run():
        return _bisection_stream(False), _bisection_stream(True)

    default, batched = run_once(benchmark, run)
    decisions = _count_routing_decisions()
    table = render_table(
        ["metric", "default", "burst batching"],
        [
            ["packets simulated",
             f"{default['pkt_per_s']:,.0f} pkt/s", f"{batched['pkt_per_s']:,.0f} pkt/s"],
            ["fabric events",
             f"{default['ev_per_s']:,.0f} ev/s", f"{batched['ev_per_s']:,.0f} ev/s"],
            ["events total", f"{default['events']:,}", f"{batched['events']:,}"],
            ["routing decisions",
             f"{decisions / default['wall_s']:,.0f} dec/s",
             f"{decisions / batched['wall_s']:,.0f} dec/s"],
        ],
        title="Fabric throughput (80-node bisection stream)",
    )
    report(table)
    save_result("engine_fabric", table)
    save_metrics(
        "fabric_throughput",
        {
            "default": default,
            "burst_batching": batched,
            "seed_pkt_per_s": SEED_PKT_RATE,
            "routing_decisions": decisions,
            "routing_decisions_per_s": decisions / default["wall_s"],
            # both modes measured against the same seed baseline (the
            # old single number silently reported batching-off only)
            "speedup_vs_seed": {
                "default": default["pkt_per_s"] / SEED_PKT_RATE,
                "burst_batching": batched["pkt_per_s"] / SEED_PKT_RATE,
            },
        },
    )
    # The event-core overhaul's acceptance bar: past the delivery fast
    # path's ~3.0x over the seed commit.  The calendar queue + packet
    # recycling measure ~3.3x (interleaved A/B it is 1.35x over the
    # heap/no-recycle PR 9 configuration on the same machine); the floor
    # sits at 2.3x because shared-host wall-clock jitter on sub-second
    # runs reaches ±30% under transient load.
    assert default["pkt_per_s"] > 2.3 * SEED_PKT_RATE
    # Batching strictly removes per-packet completion events.
    assert batched["events"] <= default["events"]
    assert batched["packets"] == default["packets"]


def test_congested_cell_cost(benchmark, report):
    """Wall-clock of one Aries incast heatmap cell (the bench budget unit)."""
    from repro.workloads import allreduce_bench, congestion_impact, incast_congestor, split_nodes

    def one_cell():
        vic, agg = split_nodes(list(range(64)), 32, "random", seed=3)
        t0 = time.perf_counter()
        r = congestion_impact(
            crystal_mini(),
            vic,
            allreduce_bench(8, iterations=6),
            agg,
            incast_congestor(),
            max_ns=400 * MS,
        )
        return time.perf_counter() - t0, r

    def run():
        # deterministic work; best-of-2 wall clock rejects machine noise
        return min((one_cell() for _ in range(2)), key=lambda x: x[0])

    wall, r = run_once(benchmark, run)
    pkts = r["pkts_isolated"] + r["pkts_congested"]
    table = render_table(
        ["metric", "value"],
        [
            ["one congested heatmap cell", f"{wall:.1f} s"],
            ["packets simulated", f"{pkts:,.0f} ({pkts / wall:,.0f} pkt/s)"],
        ],
        title="Cost of one Fig. 9 cell (isolated + congested runs)",
    )
    report(table)
    save_result("engine_cell_cost", table)
    save_metrics(
        "congested_cell_cost",
        {"wall_s": wall, "pkts": pkts, "pkt_per_s": pkts / wall},
    )
