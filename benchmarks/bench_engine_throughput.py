"""Engine throughput: how fast does the substrate simulate?

Not a paper figure — the capacity check that bounds every other bench:
raw event throughput of the DES core, packet throughput of the fabric,
and the cost of one congested heatmap cell.  These numbers are what
justify the mini-scale default (DESIGN.md §1).
"""

import time

from conftest import run_once, save_result
from repro.analysis import render_table
from repro.network.units import KiB, MS
from repro.sim import Simulator
from repro.systems import crystal_mini, malbec_mini


def test_engine_raw_event_throughput(benchmark, report):
    N = 200_000

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < N:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        t0 = time.perf_counter()
        sim.run()
        return N / (time.perf_counter() - t0)

    rate = run_once(benchmark, run)
    table = render_table(
        ["metric", "value"],
        [["event throughput", f"{rate / 1e6:.2f} M events/s"]],
        title="Engine throughput (self-rescheduling timer chain)",
    )
    report(table)
    save_result("engine_events", table)
    assert rate > 100_000  # sanity floor


def test_fabric_packet_throughput(benchmark, report):
    def run():
        fabric = malbec_mini().build()
        n = fabric.topology.n_nodes
        for i in range(n):
            fabric.send(i, (i + n // 2) % n, 256 * KiB)
        t0 = time.perf_counter()
        fabric.sim.run()
        wall = time.perf_counter() - t0
        return fabric.packets_delivered() / wall, fabric.sim.events_processed / wall

    pkt_rate, ev_rate = run_once(benchmark, run)
    table = render_table(
        ["metric", "value"],
        [
            ["packets simulated", f"{pkt_rate:,.0f} pkt/s"],
            ["fabric events", f"{ev_rate:,.0f} ev/s"],
        ],
        title="Fabric throughput (80-node bisection stream)",
    )
    report(table)
    save_result("engine_fabric", table)
    assert pkt_rate > 1_000


def test_congested_cell_cost(benchmark, report):
    """Wall-clock of one Aries incast heatmap cell (the bench budget unit)."""
    from repro.workloads import allreduce_bench, congestion_impact, incast_congestor, split_nodes

    def run():
        vic, agg = split_nodes(list(range(64)), 32, "random", seed=3)
        t0 = time.perf_counter()
        congestion_impact(
            crystal_mini(),
            vic,
            allreduce_bench(8, iterations=6),
            agg,
            incast_congestor(),
            max_ns=400 * MS,
        )
        return time.perf_counter() - t0

    wall = run_once(benchmark, run)
    table = render_table(
        ["metric", "value"],
        [["one congested heatmap cell", f"{wall:.1f} s"]],
        title="Cost of one Fig. 9 cell (isolated + congested runs)",
    )
    report(table)
    save_result("engine_cell_cost", table)
