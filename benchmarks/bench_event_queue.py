"""Event-queue microbenchmarks: calendar vs heap, in isolation.

The fabric benches measure the queue through six layers of network
machinery; these measure the scheduler itself — steady-state push/pop
throughput, cancel-heavy churn (the retransmission-timer pattern that
motivated lazy deletion + amortized compaction), and a mixed-horizon
workload where nanosecond wire events interleave with millisecond
timeout timers (the regime the calendar's adaptive refill has to get
right).  Results merge into ``results/BENCH_engine.json`` under
``event_queue`` for CI trend lines and the EXPERIMENTS.md perf tables.
"""

import time

from conftest import run_once, save_metrics, save_result
from repro.analysis import render_table
from repro.sim import Simulator


def _self_clocked(kind: str, n: int) -> float:
    """Events/s for a self-rescheduling handler chain (pure queue cost)."""
    sim = Simulator(queue=kind)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - t0)


def _bulk_push_pop(kind: str, n: int) -> float:
    """Events/s with a deep queue: n pushes spread over a wide horizon,
    then handlers that each push one replacement (steady-state depth)."""
    sim = Simulator(queue=kind)
    fuel = [n]

    def fire(slot):
        if fuel[0] > 0:
            fuel[0] -= 1
            sim.schedule(float((slot * 7919) % 1000) + 1.0, fire, slot)

    for i in range(2_000):
        sim.schedule(float((i * 7919) % 1000) + 1.0, fire, i)
    t0 = time.perf_counter()
    sim.run()
    total = n + 2_000
    return total / (time.perf_counter() - t0)


def _cancel_churn(kind: str, n: int) -> float:
    """Timer ops/s for the re-arm pattern: every event cancels a pending
    far-future timer and arms a replacement (what retransmission timers
    do per ack), so dead entries pile up and amortized compaction runs."""
    sim = Simulator(queue=kind)
    fuel = [n]
    K = 256
    slots = [None] * K

    def fire(i):
        if fuel[0] <= 0:
            return
        fuel[0] -= 1
        j = (i * 131) % K
        if slots[j] is not None:
            slots[j].cancel()
        # the timer that almost never fires (cancelled by a later event)
        slots[j] = sim.schedule_cancellable(100_000.0, _noop)
        sim.schedule(3.0, fire, i + 1)

    def _noop():
        pass

    sim.schedule(0.0, fire, 0)
    t0 = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - t0)


def _mixed_horizon(kind: str, n: int) -> float:
    """Events/s when 1-ns-scale wire events interleave with ms timers —
    the span the calendar's adaptive refill width has to absorb."""
    sim = Simulator(queue=kind)
    fuel = [n]

    def fire(scale):
        if fuel[0] > 0:
            fuel[0] -= 1
            sim.schedule(scale, fire, scale)

    for i in range(512):
        sim.schedule(1.0 + i * 0.25, fire, 2.0)
    for i in range(64):
        sim.schedule(10.0 + i, fire, 1_000_000.0)  # ms-scale timers
    t0 = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - t0)


_SCENARIOS = (
    ("self-clocked chain", _self_clocked, 150_000),
    ("bulk push/pop (deep queue)", _bulk_push_pop, 150_000),
    ("cancel-heavy churn", _cancel_churn, 100_000),
    ("mixed horizon (ns + ms)", _mixed_horizon, 150_000),
)


def test_event_queue_calendar_vs_heap(benchmark, report):
    def run():
        rates = {}
        # interleaved A/B, best-of-3: queue kinds alternate inside each
        # repeat so machine noise hits both equally
        for _ in range(3):
            for name, fn, n in _SCENARIOS:
                for kind in ("calendar", "heap"):
                    r = fn(kind, n)
                    key = (name, kind)
                    if r > rates.get(key, 0.0):
                        rates[key] = r
        return rates

    rates = run_once(benchmark, run)
    rows = []
    metrics = {}
    for name, _fn, _n in _SCENARIOS:
        cal = rates[(name, "calendar")]
        heap = rates[(name, "heap")]
        rows.append(
            [
                name,
                f"{cal / 1e6:.2f} M ev/s",
                f"{heap / 1e6:.2f} M ev/s",
                f"{cal / heap:.2f}x",
            ]
        )
        key = name.split(" (")[0].replace(" ", "_").replace("/", "_")
        metrics[key] = {
            "calendar_ev_per_s": cal,
            "heap_ev_per_s": heap,
            "calendar_vs_heap": cal / heap,
        }
    table = render_table(
        ["scenario", "calendar", "heap", "calendar/heap"],
        rows,
        title="Event-queue microbench (interleaved A/B, best-of-3)",
    )
    report(table)
    save_result("event_queue", table)
    save_metrics("event_queue", metrics)
    # sanity floors only — relative numbers are machine-class facts, the
    # absolute ones vary widely on shared hosts
    for (name, kind), rate in rates.items():
        assert rate > 100_000, (name, kind, rate)
    # the tentpole's raison d'être: the calendar must not lose the deep
    # and churny regimes where the heap pays its O(log n)
    deep = metrics["bulk_push_pop"]["calendar_vs_heap"]
    churn = metrics["cancel-heavy_churn"]["calendar_vs_heap"]
    assert deep > 0.9, deep
    assert churn > 0.9, churn
