"""Figure 6: bisection and MPI_Alltoall bandwidth on Shandy.

Paper: theoretical peaks are 6.4 TB/s (bisection: 128 cut links x 25 B/ns
x 2 directions) and 12.8 TB/s (all-to-all: 8/7 x 448 unidirectional
global links); the measured alltoall reaches >90% of peak, and there is
a throughput dip at 256 B where the MPI implementation switches from
Bruck to pairwise exchange.

The exact-peak numbers are verified against the full-size Shandy
topology; the measured curves run on shandy-mini (same 8-group
structure) and are reported as fractions of that system's own peak.
"""

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.mpi import MpiWorld
from repro.mpi.collectives import BRUCK_THRESHOLD
from repro.network.dragonfly import DragonflyParams, DragonflyTopology
from repro.network.units import KiB, gbps
from repro.systems import shandy_paper

A2A_SIZES = [
    8,
    64,
    BRUCK_THRESHOLD,
    BRUCK_THRESHOLD + 1,
    2 * KiB,
    8 * KiB,
    32 * KiB,
    128 * KiB,
]


def test_fig06_theoretical_peaks_exact(benchmark, report):
    def compute():
        topo = DragonflyTopology(shandy_paper().params)
        return (
            topo.bisection_links(),
            topo.bisection_bandwidth_bytes_ns(gbps(200)),
            topo.alltoall_bandwidth_bytes_ns(gbps(200)),
        )

    links, bisec, a2a = run_once(benchmark, compute)
    table = render_table(
        ["quantity", "computed", "paper"],
        [
            ["bisection cut links", links, 128],
            ["peak bisection", f"{bisec / 1000:.1f} TB/s", "6.4 TB/s"],
            ["peak all-to-all", f"{a2a / 1000:.1f} TB/s", "12.8 TB/s"],
            ["a2a / bisection", f"{a2a / bisec:.1f}x", "2x"],
        ],
        title="Fig. 6 — theoretical peaks (full-size Shandy)",
    )
    report(table)
    save_result("fig06_theory", table)
    assert links == 128
    assert abs(bisec - 6400.0) < 1e-6
    assert abs(a2a - 12800.0) < 1e-6


def _measure_alltoall(config, nodes, nbytes):
    fabric = config.build()
    world = MpiWorld(fabric, nodes)
    t = {}

    def main(rank):
        t0 = rank.sim.now
        yield from rank.alltoall(nbytes)
        t[rank.rank] = rank.sim.now - t0

    world.spawn(main)
    fabric.sim.run()
    elapsed = max(t.values())
    n = len(nodes)
    total_bytes = nbytes * n * (n - 1)
    return total_bytes / elapsed  # aggregate delivered B/ns


def test_fig06_alltoall_bandwidth_curve(benchmark, report):
    _, _, shandy = get_systems()
    config = shandy()
    topo = DragonflyTopology(config.params)
    peak = topo.alltoall_bandwidth_bytes_ns(config.global_link.bandwidth)
    # A subset of nodes spread across all groups: the pairwise algorithm
    # synchronizes per round, so very large rank counts are latency-bound
    # at bench-scale message sizes; the paper's 1024-node runs use up to
    # 128 KiB per pair, which we keep.
    nodes = list(range(0, topo.n_nodes, 4))
    # Injection can also bound the aggregate: account for both.
    inj_cap = len(nodes) * config.nic_bandwidth
    cap = min(peak, inj_cap)

    def run_curve():
        return {s: _measure_alltoall(config, nodes, s) for s in A2A_SIZES}

    curve = run_once(benchmark, run_curve)
    rows = []
    for size in A2A_SIZES:
        frac = curve[size] / cap
        rows.append([f"{size}B", f"{curve[size]:.1f} B/ns", f"{frac * 100:.1f}%"])
    table = render_table(
        ["message size", "aggregate bandwidth", "% of peak"],
        rows,
        title=f"Fig. 6 — MPI_Alltoall on {config.name} "
        f"(peak={cap:.0f} B/ns incl. injection cap)",
    )
    report(table)
    save_result("fig06_alltoall", table)

    # Shape claims:
    # (1) bandwidth grows with message size and reaches a large fraction
    #     of the cap at 128 KiB (paper: >90% at the largest sizes);
    assert curve[128 * KiB] > 0.5 * cap
    # (2) the Bruck->pairwise switch causes a throughput discontinuity
    #     right above 256 B (paper's dip): per-message efficiency drops.
    assert curve[BRUCK_THRESHOLD + 1] < curve[2 * KiB]
    assert curve[8] < curve[128 * KiB]


def test_fig06_bisection_bandwidth(benchmark, report):
    _, _, shandy = get_systems()
    config = shandy()
    topo = DragonflyTopology(config.params)
    nodes = list(range(topo.n_nodes))
    half = len(nodes) // 2

    def run_bisection():
        fabric = config.build()
        world = MpiWorld(fabric, nodes)
        t = {}

        def main(rank):
            # half the nodes exchange with the mirror half, both ways
            partner = rank.rank + half if rank.rank < half else rank.rank - half
            msgs = 4
            t0 = rank.sim.now
            evs = [rank.isend(partner, 64 * KiB, tag=i) for i in range(msgs)]
            for i in range(msgs):
                yield rank.recv(partner, tag=i)
            for ev in evs:
                yield ev
            t[rank.rank] = rank.sim.now - t0

        world.spawn(main)
        fabric.sim.run()
        elapsed = max(t.values())
        total = 64 * KiB * 4 * len(nodes)
        return total / elapsed

    bw = run_once(benchmark, run_bisection)
    peak = topo.bisection_bandwidth_bytes_ns(config.global_link.bandwidth)
    inj_cap = topo.n_nodes * config.nic_bandwidth
    cap = min(peak, inj_cap)
    table = render_table(
        ["quantity", "value"],
        [
            ["measured bisection", f"{bw:.1f} B/ns"],
            ["theoretical peak", f"{peak:.1f} B/ns"],
            ["injection cap", f"{inj_cap:.1f} B/ns"],
            ["fraction of cap", f"{bw / cap * 100:.1f}%"],
        ],
        title=f"Fig. 6 — bisection exchange on {config.name}",
    )
    report(table)
    save_result("fig06_bisection", table)
    assert bw > 0.4 * cap
    assert bw <= peak * 1.01
