"""Routing-decision microbenchmark: raw UGAL decisions per second.

Not a paper figure — isolates ``AdaptiveRouter.route()`` (the most-
executed code in the simulator after the event loop) from the rest of
the data path.  Two regimes:

* **healthy** — the table-driven fast path: candidate sets come from
  precomputed per-switch tuples, only the RNG sampling and congestion
  scoring run per decision;
* **degraded** — a few links failed, so decisions flow through the
  epoch-guarded degraded caches (live-port filtering amortized to one
  rebuild per fault instead of per packet).

The loop drives the router directly with synthetic injection-time
packets (``hops=1``, so the full minimal-vs-Valiant candidate set is
generated and scored every call) over every switch and a spread of
destinations.  Numbers merge into ``results/BENCH_engine.json`` for the
CI perf-smoke floors and the EXPERIMENTS.md perf section.
"""

import itertools
import time

from conftest import run_once, save_metrics, save_result
from repro.analysis import render_table
from repro.network.packet import Packet
from repro.systems import malbec_mini

#: decisions timed per regime (large enough to swamp timer resolution,
#: small enough to keep the bench under a second)
N_DECISIONS = 120_000


def _decision_cases(fabric):
    """(switch, packet) pairs covering local, global and Valiant legs."""
    topo = fabric.topology
    n = topo.n_nodes
    hps = topo.params.hosts_per_switch
    cases = []
    for src in range(0, n, max(1, hps)):
        sw = fabric.switches[topo.node_switch(src)]
        for dst in ((src + n // 2) % n, (src + hps) % n, (src + 1) % n):
            if dst == src:
                continue
            pkt = Packet(src, dst, 1024)
            pkt.hops = 1  # injection decision: full candidate set
            cases.append((sw, pkt))
    return cases


def _decision_rate(fabric, n_decisions: int, repeats: int = 2) -> float:
    route = fabric.router.route
    cases = _decision_cases(fabric)
    loop = itertools.cycle(cases)
    best = None
    for _ in range(repeats):  # best-of-N wall clock rejects machine noise
        t0 = time.perf_counter()
        for _ in range(n_decisions):
            sw, pkt = next(loop)
            route(sw, pkt)
            # route() may commit a Valiant misroute on the packet; undo
            # it so every iteration decides the same injection shape.
            pkt.intermediate_group = None
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return n_decisions / best


def _fail_some_links(fabric) -> None:
    """Degrade the fabric: one local and one global link per early group."""
    local = [k for k in sorted(fabric.links) if k[0] == "local"][:2]
    glob = [k for k in sorted(fabric.links) if k[0] == "global"][:2]
    for key in local + glob:
        fabric.fail_link(key)
    assert fabric.topology.degraded


def test_routing_decision_rate(benchmark, report):
    def run():
        healthy = malbec_mini().build()
        healthy_rate = _decision_rate(healthy, N_DECISIONS)
        degraded = malbec_mini().build()
        _fail_some_links(degraded)
        degraded_rate = _decision_rate(degraded, N_DECISIONS)
        return healthy_rate, degraded_rate

    healthy_rate, degraded_rate = run_once(benchmark, run)
    table = render_table(
        ["regime", "rate"],
        [
            ["healthy (table fast path)", f"{healthy_rate:,.0f} decisions/s"],
            ["degraded (epoch-cached)", f"{degraded_rate:,.0f} decisions/s"],
        ],
        title="AdaptiveRouter decision rate (malbec_mini, injection decisions)",
    )
    report(table)
    save_result("engine_routing_decisions", table)
    save_metrics(
        "routing_decisions",
        {
            "healthy_decisions_per_s": healthy_rate,
            "degraded_decisions_per_s": degraded_rate,
            "n_decisions": N_DECISIONS,
        },
    )
    # Sanity floors (CI smoke asserts harder ones from BENCH_engine.json).
    assert healthy_rate > 50_000
    assert degraded_rate > 50_000
