"""Figure 5: RTT/2 for different message sizes and software layers.

Paper: IB verbs < libfabric < MPI (all close, ~1.3-2 us at 8 B) with UDP
and TCP an order of magnitude above; all RDMA paths converge to wire
bandwidth at large sizes; MPI adds only marginal overhead to libfabric
for small messages.
"""

from conftest import run_once, save_result
from repro.analysis import render_series, render_table
from repro.mpi import MpiWorld, half_rtt
from repro.network.units import KiB, MiB
from repro.systems import malbec_mini

SIZES = [8, 64, 512, 1 * KiB, 8 * KiB, 128 * KiB, 1 * MiB, 16 * MiB]
LAYERS = ["ib_verbs", "libfabric", "mpi", "udp", "tcp"]


def test_fig05_half_rtt_curves(benchmark, report):
    def compute():
        return {
            layer: [half_rtt(size, layer) for size in SIZES] for layer in LAYERS
        }

    curves = run_once(benchmark, compute)
    cols = {layer: [v / 1e3 for v in curves[layer]] for layer in LAYERS}
    table = render_series(
        "size(B)",
        SIZES,
        cols,
        title="Fig. 5 — RTT/2 (us) per software layer",
        fmt="{:.1f}",
    )
    report(table)
    save_result("fig05_software_stack", table)

    # ordering at small sizes: verbs < libfabric < mpi << udp < tcp
    small = [curves[l][0] for l in LAYERS]
    assert small == sorted(small)
    assert curves["udp"][0] > 4 * curves["mpi"][0]
    # MPI adds only marginal overhead to libfabric at small sizes (paper)
    assert curves["mpi"][0] / curves["libfabric"][0] < 1.4
    # convergence at 16 MiB for the RDMA paths
    assert curves["mpi"][-1] / curves["ib_verbs"][-1] < 1.1
    # sockets stay behind even at 16 MiB (copy-limited)
    assert curves["tcp"][-1] > curves["mpi"][-1] * 1.3


def test_fig05_mpi_layer_cross_checked_against_simulator(benchmark, report):
    """The analytic 'mpi' curve must agree with an actual simulated MPI
    pingpong on a quiet fabric (within modelling tolerance)."""

    def measure():
        out = {}
        for size in (8, 1 * KiB, 128 * KiB):
            fabric = malbec_mini().build()
            world = MpiWorld(fabric, nodes=[0, 20], stack="mpi")
            times = []

            def main(rank, size=size, times=times):
                for it in range(10):
                    if rank.rank == 0:
                        t0 = rank.sim.now
                        yield rank.send(1, size, tag=it)
                        yield rank.recv(1, tag=it)
                        times.append((rank.sim.now - t0) / 2)
                    else:
                        yield rank.recv(0, tag=it)
                        yield rank.send(0, size, tag=it)

            world.spawn(main)
            fabric.sim.run()
            out[size] = sum(times) / len(times)
        return out

    measured = run_once(benchmark, measure)
    rows = []
    for size, sim_ns in measured.items():
        analytic = half_rtt(size, "mpi")
        rows.append(
            [f"{size}B", f"{sim_ns / 1e3:.2f}us", f"{analytic / 1e3:.2f}us"]
        )
        assert 0.4 < sim_ns / analytic < 2.5
    table = render_table(
        ["size", "simulated RTT/2", "analytic RTT/2"],
        rows,
        title="Fig. 5 — simulator vs analytic stack model (MPI layer)",
    )
    report(table)
    save_result("fig05_cross_check", table)
