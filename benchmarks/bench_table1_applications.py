"""Table I: the victim application suite.

The table itself is descriptive; what a reproduction must establish is
that each proxy (a) runs, (b) exhibits the claimed communication pattern
(message mix), and (c) has a realistic communication fraction, because
that fraction is what makes applications less congestion-sensitive than
microbenchmarks in Figs. 9-11.
"""

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.network.units import MS
from repro.workloads import (
    TAILBENCH_APPS,
    fft3d,
    hpcg,
    lammps,
    milc,
    resnet_proxy,
    run_workload,
    tailbench_client_server,
)


def test_table1_application_suite(benchmark, report):
    _, malbec, _ = get_systems()
    config = malbec()
    nodes = list(range(16))

    hpc_apps = {
        "MILC": (milc, "4D halo + global reductions"),
        "HPCG": (hpcg, "stencil halo + dot-product allreduces"),
        "LAMMPS": (lammps, "6-way ghost exchange + reductions"),
        "FFT": (fft3d, "alltoall pencil transposes"),
        "resnet-proxy": (resnet_proxy, "overlapped gradient allreduces"),
    }

    def run_all():
        out = {}
        for name, (factory, _) in hpc_apps.items():
            full = run_workload(config, nodes, factory(iterations=3), max_ns=200 * MS)
            bare = run_workload(
                config, nodes, factory(iterations=3, compute_ns=0.0), max_ns=200 * MS
            )
            out[name] = (full, bare)
        for name, app in TAILBENCH_APPS.items():
            res = run_workload(
                config,
                nodes[:2],
                tailbench_client_server(app, n_requests=6),
                max_ns=200 * MS,
            )
            out[name] = (res, None)
        return out

    results = run_once(benchmark, run_all)
    rows = []
    comm_fracs = {}
    for name, (factory, pattern) in hpc_apps.items():
        full, bare = results[name]
        frac = bare.mean() / full.mean()
        comm_fracs[name] = frac
        rows.append(["HPC", name, pattern, f"{full.mean() / 1e3:.0f}us", f"{frac:.0%}"])
    for name, app in TAILBENCH_APPS.items():
        res, _ = results[name]
        rows.append(
            ["DC", name, "client/server RPC", f"{res.mean() / 1e3:.0f}us", "-"]
        )
    table = render_table(
        ["type", "application", "communication pattern", "iter/req time", "comm frac"],
        rows,
        title="Table I — victim applications (16 ranks, isolated)",
    )
    report(table)
    save_result("table1_applications", table)

    for name, (full, _) in results.items():
        assert full.completed, f"{name} did not finish"
    # Compute must dominate enough that congestion is diluted, but
    # communication must still matter (paper's premise).
    for name, frac in comm_fracs.items():
        assert 0.02 < frac < 0.9, f"{name} comm fraction {frac:.2f} unrealistic"
