"""Figure 12: bursty incast against a 128 B MPI_Alltoall on Slingshot.

Paper (all Malbec nodes, 50/50 interleaved): sweeping the aggressor's
message size x burst length x inter-burst gap shows that (i) very small
(8 B) and very large (1 MiB) aggressor messages leave the victim
untouched — too little congestion, or congestion control fully engaged;
(ii) medium sizes (128 KiB) hurt transiently, up to C ~ 1.21, worst for
long bursts and short gaps; (iii) mega-bursts behave like persistent
congestion, i.e. Slingshot tames even sustained incast.
"""

import numpy as np

from conftest import get_systems, run_once, save_result
from repro.analysis import render_heatmap
from repro.network.units import KiB, MiB, MS, US
from repro.workloads import (
    alltoall_bench,
    bursty_incast_congestor,
    congestion_impact,
    split_nodes,
)

BURSTS = [1, 16, 128, 1024]
GAPS_US = [1.0, 100.0, 10_000.0]
AGG_SIZES = [8, 128 * KiB, 1 * MiB]
NODES = list(range(64))


def _grid(config):
    victim_nodes, aggressor_nodes = split_nodes(NODES, 32, "interleaved")
    out = {}
    for size in AGG_SIZES:
        for burst in BURSTS:
            for gap_us in GAPS_US:
                r = congestion_impact(
                    config,
                    victim_nodes,
                    alltoall_bench(128, iterations=6),
                    aggressor_nodes,
                    bursty_incast_congestor(
                        message_bytes=size, burst_size=burst, gap_ns=gap_us * US
                    ),
                    warmup_ns=0.2 * MS,
                    max_ns=400 * MS,
                )
                out[(size, burst, gap_us)] = r["impact"]
    return out


def test_fig12_bursty_congestion(benchmark, report):
    _, malbec, _ = get_systems()
    grid = run_once(benchmark, lambda: _grid(malbec()))

    tables = []
    for size in AGG_SIZES:
        label = f"{size}B" if size < KiB else (f"{size // KiB}KiB" if size < MiB else "1MiB")
        values = [
            [grid[(size, burst, gap)] for gap in GAPS_US] for burst in BURSTS
        ]
        tables.append(
            render_heatmap(
                [f"burst={b}" for b in BURSTS],
                [f"gap={g:g}us" for g in GAPS_US],
                values,
                title=f"Fig. 12 — 128B alltoall vs bursty incast ({label} messages)",
            )
        )
    out = "\n\n".join(tables)
    report(out)
    save_result("fig12_bursty", out)

    arr = np.array(list(grid.values()))
    small = np.array([grid[(8, b, g)] for b in BURSTS for g in GAPS_US])
    medium = np.array([grid[(128 * KiB, b, g)] for b in BURSTS for g in GAPS_US])
    large = np.array([grid[(1 * MiB, b, g)] for b in BURSTS for g in GAPS_US])

    # (i) tiny aggressor messages never hurt
    assert small.max() < 1.1
    # (ii) medium sizes hurt the most, but Slingshot keeps it bounded
    #      (paper: <= 1.21; we allow <= 1.6 at mini scale)
    assert medium.max() >= large.max() - 0.05
    assert arr.max() < 1.6
    # (iii) worst medium cell is a long burst (transient queue build-up)
    worst = max(
        ((b, g) for b in BURSTS for g in GAPS_US),
        key=lambda k: grid[(128 * KiB, k[0], k[1])],
    )
    assert worst[0] >= 16
