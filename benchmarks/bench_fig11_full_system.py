"""Figure 11: congestion impact on applications at full system scale.

Paper (all 1024 Shandy nodes, random allocation — the worst case from
Fig. 10 — with 25/50/75% of nodes given to the aggressor): even at full
scale the congestion control protects applications; the worst observed
slowdown is 3.55x (LAMMPS under a 75% incast aggressor), and all-to-all
aggressors stay harmless.

Bench scale: every node of shandy-mini (96 nodes, same 8-group shape).
"""

from functools import partial

import numpy as np

from conftest import get_systems, run_once, save_result
from heatmap_common import run_heatmap
from repro.analysis import render_heatmap
from repro.workloads import (
    alltoall_congestor,
    fft3d,
    hpcg,
    incast_congestor,
    lammps,
    milc,
    resnet_proxy,
)


def _victims():
    return {
        "MILC": partial(milc, iterations=3),
        "HPCG": partial(hpcg, iterations=3),
        "LAMMPS": partial(lammps, iterations=3),
        "FFT": partial(fft3d, iterations=3),
        "resnet": partial(resnet_proxy, iterations=3),
    }


def _rows():
    out = []
    for cong_name, cong in (("a2a", alltoall_congestor), ("incast", incast_congestor)):
        for agg_frac, label in ((0.25, "25%"), (0.5, "50%"), (0.75, "75%")):
            out.append((f"{cong_name}-{label}", cong, 1.0 - agg_frac))
    return out


def test_fig11_full_system_applications(benchmark, report):
    _, _, shandy = get_systems()
    config = shandy()
    n = config.params.n_nodes

    def run_grid():
        return run_heatmap(
            config, _victims(), list(range(n)), policy="random", rows=_rows(),
            jobs=None,
        )

    rows, cols, values = run_once(benchmark, run_grid)
    table = render_heatmap(
        rows,
        cols,
        values,
        title=f"Fig. 11 — application impact on all {n} nodes of {config.name} (random)",
    )
    report(table)
    save_result("fig11_full_system", table)

    arr = np.array(values)
    # Paper: worst case 3.55x — congestion control holds at full scale.
    assert arr.max() < 4.0
    # All-to-all rows stay essentially flat.
    assert arr[:3].max() < 1.6
