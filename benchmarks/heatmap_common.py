"""Shared machinery for the congestion-impact figures (Figs. 8-11).

The victim panels, aggressor rows, and grid runner now live in
:mod:`repro.sweeps` (so the ``heatmap``/``allocation`` CLI subcommands
can use them too); this module re-exports them for the benches.
"""

from __future__ import annotations

from repro.sweeps import (  # noqa: F401
    ITER,
    MAX_NS,
    aggressor_rows,
    app_victims,
    micro_victims,
    run_heatmap,
)
