"""Shared machinery for the congestion-impact figures (Figs. 8-11).

Defines the victim column set (a trimmed version of the paper's Fig. 9
columns — one small and one large message size per microbenchmark,
every application), the aggressor rows, and the grid runner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.network.units import KiB, MS
from repro.workloads import (
    TAILBENCH_APPS,
    allreduce_bench,
    alltoall_bench,
    alltoall_congestor,
    barrier_bench,
    broadcast_bench,
    congestion_impact,
    fft3d,
    halo3d,
    hpcg,
    incast_bench,
    incast_congestor,
    lammps,
    milc,
    pingpong,
    resnet_proxy,
    split_nodes,
    sweep3d,
    tailbench_client_server,
)

MAX_NS = 400 * MS
ITER = 6


def app_victims() -> Dict[str, Callable]:
    """Table I victims (HPC + datacenter), trimmed iteration counts."""
    return {
        "MILC": lambda: milc(iterations=3),
        "HPCG": lambda: hpcg(iterations=3),
        "LAMMPS": lambda: lammps(iterations=3),
        "FFT": lambda: fft3d(iterations=3),
        "resnet": lambda: resnet_proxy(iterations=3),
        "silo": lambda: tailbench_client_server(TAILBENCH_APPS["silo"], n_requests=8),
        "sphinx": lambda: tailbench_client_server(TAILBENCH_APPS["sphinx"], n_requests=4),
        "xapian": lambda: tailbench_client_server(TAILBENCH_APPS["xapian"], n_requests=8),
        "img-dnn": lambda: tailbench_client_server(TAILBENCH_APPS["img-dnn"], n_requests=8),
    }


def micro_victims() -> Dict[str, Callable]:
    """The paper's microbenchmark columns, one small + one large size."""
    return {
        "pingpong-8B": lambda: pingpong(8, iterations=ITER),
        "pingpong-128K": lambda: pingpong(128 * KiB, iterations=ITER),
        "allreduce-8B": lambda: allreduce_bench(8, iterations=ITER),
        "allreduce-128K": lambda: allreduce_bench(128 * KiB, iterations=4),
        "alltoall-8B": lambda: alltoall_bench(8, iterations=ITER),
        "alltoall-128K": lambda: alltoall_bench(128 * KiB, iterations=2),
        "barrier": lambda: barrier_bench(iterations=ITER),
        "bcast-8B": lambda: broadcast_bench(8, iterations=ITER),
        "halo3d-1K": lambda: halo3d(1 * KiB, iterations=ITER),
        "sweep3d-512B": lambda: sweep3d(512, iterations=ITER),
        "incast-1K": lambda: incast_bench(1 * KiB, iterations=4),
    }


def aggressor_rows() -> List[Tuple[str, Callable, float]]:
    """(label, congestor factory, victim fraction) — the paper's 6 rows."""
    rows = []
    for cong_name, cong in (("a2a", alltoall_congestor), ("incast", incast_congestor)):
        for agg_frac, label in ((0.1, "10%"), (0.5, "50%"), (0.9, "90%")):
            rows.append((f"{cong_name}-{label}", cong, 1.0 - agg_frac))
    return rows


def run_heatmap(
    config,
    victims: Dict[str, Callable],
    nodes: Sequence[int],
    policy: str = "linear",
    ppn: int = 1,
    rows: Sequence[Tuple[str, Callable, float]] = None,
    seed: int = 3,
) -> Tuple[List[str], List[str], List[List[float]]]:
    """One Fig. 9-style heatmap: rows x victim columns of C = Tc/Ti."""
    rows = list(rows) if rows is not None else aggressor_rows()
    col_labels = list(victims)
    values: List[List[float]] = []
    for row_label, congestor_factory, victim_frac in rows:
        n_victim = max(2, round(len(nodes) * victim_frac))
        victim_nodes, aggressor_nodes = split_nodes(list(nodes), n_victim, policy, seed=seed)
        row_vals = []
        for name in col_labels:
            result = congestion_impact(
                config,
                victim_nodes,
                victims[name](),
                aggressor_nodes,
                congestor_factory(),
                aggressor_ppn=ppn,
                max_ns=MAX_NS,
            )
            row_vals.append(result["impact"])
        values.append(row_vals)
    return [r[0] for r in rows], col_labels, values
