"""Delivery-path microbenchmark: NIC ack handling and pump admission.

Not a paper figure — isolates the two per-packet code paths that the
allocation-free delivery fast path rebuilt (``NIC.on_ack`` and
``NIC._pump``) from routing and the event loop, and times them against
the retained straight-line reference implementation
(``delivery_fast_path=False``).  Two meters:

* **acks/s** — one full ack round-trip epilogue per iteration: window
  update through the CC strategy, counters, and an (empty) pump check;
* **pump iterations/s** — admitted packets per second through the
  window-admission loop, with the egress port stubbed so only the
  NIC-side bookkeeping is on the clock.

Numbers merge into ``results/BENCH_engine.json`` for the CI perf-smoke
floors and the EXPERIMENTS.md perf section.
"""

import time

from conftest import run_once, save_metrics, save_result
from repro.analysis import render_table
from repro.network.dragonfly import DragonflyParams
from repro.network.packet import Packet
from repro.systems import slingshot_config

#: iterations per meter (swamps timer resolution, stays sub-second)
N_ACKS = 200_000
N_PUMP_PACKETS = 200_000


class _Sink:
    """Egress stub: absorbs packets so only NIC bookkeeping is timed."""

    bandwidth = 25.0  # B/ns, only read by the paced branch

    def enqueue(self, pkt):
        pass


def _build(fast: bool):
    cfg = slingshot_config(
        DragonflyParams(2, 3, 2, links_per_pair=1), seed=0
    ).with_(delivery_fast_path=fast)
    return cfg.build()


def _ack_rate(fabric, n_acks: int, repeats: int = 3) -> float:
    nic = fabric.nics[0]
    state = nic._pair(1)
    pkt = Packet(0, 1, 1024)
    on_ack = nic.on_ack
    best = None
    for _ in range(repeats):  # best-of-N wall clock rejects machine noise
        t0 = time.perf_counter()
        for _ in range(n_acks):
            # keep the pair in steady state: one ack settles one packet
            state.in_flight = 1
            on_ack(pkt)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return n_acks / best


def _pump_rate(fabric, n_packets: int, repeats: int = 3) -> float:
    nic = fabric.nics[0]
    nic.out_port = _Sink()  # admission loop only; no events, no credits
    state = nic._pair(1)
    state.window = float(n_packets)  # admit the whole batch in one pump
    pkts = [Packet(0, 1, 1024) for _ in range(n_packets)]
    nbytes = float(sum(p.size for p in pkts))
    best = None
    for _ in range(repeats):
        state.pending.clear()
        state.pending.extend(pkts)
        state.pending_count = n_packets
        state.pending_bytes = nbytes
        state.in_flight = 0
        t0 = time.perf_counter()
        nic._pump(state)
        wall = time.perf_counter() - t0
        assert state.pending_count == 0  # everything was admitted
        if best is None or wall < best:
            best = wall
    return n_packets / best


def test_delivery_path_rates(benchmark, report):
    def run():
        fast = _build(True)
        ref = _build(False)
        return (
            _ack_rate(fast, N_ACKS),
            _ack_rate(ref, N_ACKS),
            _pump_rate(fast, N_PUMP_PACKETS),
            _pump_rate(ref, N_PUMP_PACKETS),
        )

    ack_fast, ack_ref, pump_fast, pump_ref = run_once(benchmark, run)
    table = render_table(
        ["meter", "fast path", "reference", "speedup"],
        [
            ["acks", f"{ack_fast:,.0f} acks/s", f"{ack_ref:,.0f} acks/s",
             f"{ack_fast / ack_ref:.2f}x"],
            ["pump admissions", f"{pump_fast:,.0f} pkt/s",
             f"{pump_ref:,.0f} pkt/s", f"{pump_fast / pump_ref:.2f}x"],
        ],
        title="NIC delivery path (ack epilogue / window admission)",
    )
    report(table)
    save_result("engine_delivery_path", table)
    save_metrics(
        "delivery_path",
        {
            "acks_per_s": ack_fast,
            "acks_per_s_reference": ack_ref,
            "pump_packets_per_s": pump_fast,
            "pump_packets_per_s_reference": pump_ref,
            "n_acks": N_ACKS,
            "n_pump_packets": N_PUMP_PACKETS,
        },
    )
    # Sanity floors (CI smoke asserts harder ones from BENCH_engine.json).
    assert ack_fast > 200_000
    assert pump_fast > 200_000
