"""Ablation: buffer organization — per-wire pools vs switch-shared memory.

DESIGN.md models Aries' ingress as one shared pool per switch (so transit
congestion starves unrelated arrivals) and Rosetta's as dedicated
per-wire pools.  This bench isolates the *organization* at matched total
capacity (one 256 KiB pool per switch vs 16 KiB dedicated per wire on a
~16-wire switch): the same no-endpoint-CC network is built both ways and
hit with the same incast.

Two effects are visible and both are reported: with a clean (linear)
placement, per-wire pools isolate victims from transit congestion, while
shared memory couples them; total-capacity differences (not tested here)
would separately deepen queues.
"""

import dataclasses

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.network.fabric import LinkSpec
from repro.network.units import KiB, MS
from repro.workloads import (
    allreduce_bench,
    congestion_impact,
    incast_congestor,
    split_nodes,
)

NODES = list(range(64))
SWITCH_BYTES = 256 * KiB


def _with_buffer(spec: LinkSpec, nbytes: float) -> LinkSpec:
    return dataclasses.replace(spec, buffer_bytes=nbytes)


def test_ablation_buffer_sharing(benchmark, report):
    crystal, _, _ = get_systems()

    def run_grid():
        out = {}
        for policy in ("linear", "random"):
            victim_nodes, aggressor_nodes = split_nodes(NODES, 32, policy, seed=3)
            for shared in (True, False):
                base = crystal(shared_switch_buffers=shared)
                if not shared:
                    # Matched capacity: split the switch's pool across
                    # its ~16 wires.
                    per_wire = SWITCH_BYTES / 16
                    base = base.with_(
                        host_link=_with_buffer(base.host_link, per_wire),
                        local_link=_with_buffer(base.local_link, per_wire),
                        global_link=_with_buffer(base.global_link, per_wire),
                    )
                out[(policy, shared)] = congestion_impact(
                    base,
                    victim_nodes,
                    allreduce_bench(8, iterations=6),
                    aggressor_nodes,
                    incast_congestor(),
                    max_ns=400 * MS,
                )["impact"]
        return out

    results = run_once(benchmark, run_grid)
    rows = []
    for policy in ("linear", "random"):
        rows.append(
            [
                policy,
                f"{results[(policy, True)]:.2f}",
                f"{results[(policy, False)]:.2f}",
            ]
        )
    table = render_table(
        ["placement", "switch-shared pool C", "per-wire pools C"],
        rows,
        title="Ablation — ingress buffer organization at matched capacity "
        "(no endpoint CC)",
    )
    report(table)
    save_result("ablation_buffers", table)

    # With a clean linear placement, shared ingress memory couples the
    # victim to transit congestion that per-wire pools would isolate.
    assert results[("linear", True)] >= results[("linear", False)]
    # Tree saturation is visible somewhere in every organization.
    assert results[("random", True)] > 2.0
    assert results[("random", False)] > 2.0
