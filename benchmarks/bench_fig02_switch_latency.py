"""Figure 2: distribution of Rosetta switch latency for RoCE traffic.

Paper: mean and median 350 ns, the whole distribution between 300 and
400 ns except a few outliers.  Regenerated from the tile-level model
(`repro.core.rosetta`) and cross-checked against the fabric's 2-hop
minus 1-hop measurement, which is how the paper derived it.
"""

import numpy as np

from conftest import run_once, save_result
from repro.analysis import render_table
from repro.core.rosetta import RosettaModel
from repro.systems import malbec_mini

N_SAMPLES = 20_000


def _sample_model():
    return RosettaModel(seed=7).latency_samples(N_SAMPLES)


def test_fig02_switch_latency_distribution(benchmark, report):
    samples = run_once(benchmark, _sample_model)

    mean, median = float(np.mean(samples)), float(np.median(samples))
    p1, p99 = np.percentile(samples, [1, 99])
    in_band = float(np.mean((samples >= 300) & (samples <= 400)))

    rows = [
        ["mean", f"{mean:.0f} ns", "350 ns"],
        ["median", f"{median:.0f} ns", "350 ns"],
        ["1st percentile", f"{p1:.0f} ns", ">= 300 ns"],
        ["99th percentile", f"{p99:.0f} ns", "<= 400 ns"],
        ["fraction in 300-400 ns", f"{in_band * 100:.1f}%", "~all but outliers"],
    ]
    table = render_table(
        ["statistic", "measured", "paper"],
        rows,
        title=f"Fig. 2 — Rosetta traversal latency ({N_SAMPLES} samples)",
    )
    report(table)
    save_result("fig02_switch_latency", table)

    assert abs(mean - 350) < 15
    assert abs(median - 350) < 15
    assert in_band > 0.95


def test_fig02_fabric_two_hop_minus_one_hop(benchmark, report):
    """The paper's methodology: switch latency = 2-hop minus 1-hop
    end-to-end latency.  Our fabric model must be self-consistent with
    its configured pipeline latency."""

    def measure():
        lat = {}
        for label, dst in (("1hop", 1), ("2hop", 4)):
            fabric = malbec_mini().build()
            msg = fabric.send(0, dst, 8)
            fabric.sim.run()
            lat[label] = msg.complete_time - msg.submit_time
        return lat

    lat = run_once(benchmark, measure)
    delta = lat["2hop"] - lat["1hop"]
    cfg_latency = malbec_mini().switch_latency
    table = render_table(
        ["path", "latency (ns)"],
        [["1 inter-switch hop", f"{lat['1hop']:.0f}"],
         ["2 inter-switch hops", f"{lat['2hop']:.0f}"],
         ["difference (switch latency)", f"{delta:.0f}"]],
        title="Fig. 2 methodology — per-switch latency from hop difference",
    )
    report(table)
    save_result("fig02_hop_difference", table)
    # The difference is one extra switch + one extra wire; the switch
    # pipeline dominates.
    assert cfg_latency * 0.8 <= delta <= cfg_latency * 1.8
