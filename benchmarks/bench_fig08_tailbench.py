"""Figure 8: Tailbench latency distributions with and without incast.

Paper (linear allocation, 10%/90% victim/aggressor): on Aries, silo,
xapian and img-dnn collapse under congestion (means and tails explode,
e.g. silo 0.5 -> 15.7 ms p99) while sphinx degrades mildly because its
compute dominates; on Slingshot no application is meaningfully affected.
"""

import numpy as np

from conftest import get_systems, run_once, save_result
from repro.analysis import render_table
from repro.network.units import MS
from repro.workloads import (
    TAILBENCH_APPS,
    incast_congestor,
    run_workload,
    split_nodes,
    tailbench_client_server,
)

NODES = list(range(64))
N_REQUESTS = 12


def _distributions(config):
    """{(app, 'isolated'|'congested'): request latencies}"""
    victim_nodes, aggressor_nodes = split_nodes(NODES, 6, "linear")  # 10%/90%
    out = {}
    for app_name, app in TAILBENCH_APPS.items():
        wl = lambda: tailbench_client_server(app, n_requests=N_REQUESTS)
        # client on the victim's first node, server on its last: the RPC
        # spans the allocation, like a real deployment would.
        iso = run_workload(config, victim_nodes, wl(), max_ns=400 * MS)
        cong = run_workload(
            config,
            victim_nodes,
            wl(),
            aggressor_nodes=aggressor_nodes,
            aggressor=incast_congestor(),
            warmup_ns=1 * MS,
            max_ns=400 * MS,
        )
        out[(app_name, "isolated")] = iso.iteration_times
        out[(app_name, "congested")] = cong.iteration_times
    return out


def _render(dists, system_name):
    rows = []
    impacts = {}
    for app_name in TAILBENCH_APPS:
        iso = np.array(dists[(app_name, "isolated")])
        cong = np.array(dists[(app_name, "congested")])
        impacts[app_name] = cong.mean() / iso.mean()
        rows.append(
            [
                app_name,
                f"{iso.mean() / 1e3:.1f}",
                f"{np.percentile(iso, 95) / 1e3:.1f}",
                f"{cong.mean() / 1e3:.1f}",
                f"{np.percentile(cong, 95) / 1e3:.1f}",
                f"{impacts[app_name]:.2f}x",
            ]
        )
    table = render_table(
        ["app", "iso mean(us)", "iso p95", "cong mean(us)", "cong p95", "impact"],
        rows,
        title=f"Fig. 8 — Tailbench under incast on {system_name}",
    )
    return table, impacts


def test_fig08_tailbench_aries(benchmark, report):
    crystal, _, _ = get_systems()
    dists = run_once(benchmark, lambda: _distributions(crystal()))
    table, impacts = _render(dists, "Aries")
    report(table)
    save_result("fig08_aries", table)
    # Network-bound apps visibly degrade on Aries...
    assert max(impacts["silo"], impacts["xapian"], impacts["img-dnn"]) > 1.5
    # ...but sphinx (compute-heavy) degrades the least of the bunch.
    assert impacts["sphinx"] <= min(impacts["silo"], impacts["img-dnn"]) + 0.5


def test_fig08_tailbench_slingshot(benchmark, report):
    _, malbec, _ = get_systems()
    dists = run_once(benchmark, lambda: _distributions(malbec()))
    table, impacts = _render(dists, "Slingshot")
    report(table)
    save_result("fig08_slingshot", table)
    # Paper: "we do not observe any relevant effect on SLINGSHOT".
    assert max(impacts.values()) < 1.3
