#!/usr/bin/env python3
"""Quickstart: build a Slingshot fabric, run an MPI job, measure it.

This walks the three layers a user touches:

1. pick a system config (`repro.systems`) and build a `Fabric`;
2. map an MPI job onto nodes (`repro.mpi.MpiWorld`);
3. write rank programs as generators and measure them.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_time_ns, render_table
from repro.mpi import MpiWorld
from repro.network.units import KiB
from repro.systems import malbec_mini


def main() -> None:
    # 1. A scaled-down Malbec: 4 dragonfly groups, 200 Gb/s links,
    #    Rosetta-style switches, Slingshot congestion control.
    config = malbec_mini()
    fabric = config.build()
    print(
        f"Built {config.name}: {fabric.topology.n_nodes} nodes, "
        f"{fabric.topology.n_switches} switches, "
        f"{config.params.n_groups} groups"
    )

    # 2. A 16-rank job on the first 16 nodes.
    world = MpiWorld(fabric, nodes=list(range(16)))

    # 3. Rank programs are generators: yield sends/recvs/collectives.
    latencies = {}

    def job(rank):
        for size in (8, 1 * KiB, 64 * KiB):
            t0 = rank.sim.now
            yield from rank.allreduce(size)
            if rank.rank == 0:
                latencies[size] = rank.sim.now - t0

    world.spawn(job)
    fabric.sim.run()
    fabric.assert_quiescent()  # every packet delivered, every buffer empty

    rows = [
        [f"{size}B", format_time_ns(lat)] for size, lat in sorted(latencies.items())
    ]
    print()
    print(render_table(["allreduce size", "latency"], rows, title="16-rank MPI_Allreduce"))
    print(f"\nSimulated {fabric.sim.events_processed} events, "
          f"{fabric.packets_delivered()} packets delivered.")


if __name__ == "__main__":
    main()
