#!/usr/bin/env python3
"""Adaptive routing under the microscope (paper §II-C).

Drives the same hot-spot traffic through three routing policies —
minimal, Valiant (always misroute), and Slingshot's adaptive routing —
and shows the latency/path-length trade-off: adaptive routes minimally
when quiet, diverts only when the minimal path congests.

Run:  python examples/adaptive_routing_demo.py
"""

from repro.analysis import render_table
from repro.core.adaptive_routing import AdaptiveRouter, MinimalRouter, ValiantRouter
from repro.network.units import KiB
from repro.systems import shandy_mini


def run_case(router_cls, hot: bool):
    cfg = shandy_mini(router_factory=lambda topo, seed: router_cls(topo, seed))
    fabric = cfg.build()
    topo = fabric.topology
    msgs = []
    if hot:
        # Hammer one switch pair: all nodes of switch 0 -> all of switch 1.
        for _ in range(30):
            for s in topo.nodes_on_switch(0):
                for d in topo.nodes_on_switch(1):
                    msgs.append(fabric.send(s, d, 16 * KiB))
    else:
        # One quiet cross-group message at a time.
        for d in list(topo.nodes_in_group(3))[:8]:
            msgs.append(fabric.send(0, d, 4 * KiB))
    fabric.sim.run()
    assert all(m.complete for m in msgs)
    hops = sum(sw.pkts_forwarded for sw in fabric.switches) / fabric.packets_delivered()
    finish = max(m.complete_time for m in msgs) / 1e3
    return hops, finish


def main() -> None:
    rows = []
    for name, cls in (
        ("minimal", MinimalRouter),
        ("valiant", ValiantRouter),
        ("adaptive", AdaptiveRouter),
    ):
        quiet_hops, quiet_t = run_case(cls, hot=False)
        hot_hops, hot_t = run_case(cls, hot=True)
        rows.append(
            [
                name,
                f"{quiet_hops:.2f}",
                f"{quiet_t:.1f}us",
                f"{hot_hops:.2f}",
                f"{hot_t:.1f}us",
            ]
        )
    print(
        render_table(
            ["router", "quiet hops/pkt", "quiet finish", "hot hops/pkt", "hot finish"],
            rows,
            title="Routing policy trade-off on shandy-mini",
        )
    )
    print(
        "\nMinimal is best when quiet but cannot avoid the hot link;\n"
        "Valiant spreads load but pays double paths even when quiet;\n"
        "adaptive routing (Slingshot) gets both: minimal hops when quiet,\n"
        "divergence — and a faster finish — under the hot spot."
    )


if __name__ == "__main__":
    main()
