#!/usr/bin/env python3
"""Topology explorer: dragonfly design math from the paper's Fig. 3/6.

Answers the questions a system architect asks: how big can a dragonfly
get with 64-port switches, how many cables does a system need, and what
are its theoretical bisection / all-to-all bandwidths?

Run:  python examples/topology_explorer.py
"""

from repro.analysis import render_table
from repro.network.dragonfly import DragonflyParams, DragonflyTopology, largest_system
from repro.network.units import gbps
from repro.systems import malbec_paper, shandy_paper


def main() -> None:
    # --- the largest system a Rosetta switch can build (Fig. 3) --------
    ls = largest_system()
    print("Largest 1-D dragonfly from 64-port Rosetta switches:")
    print(f"  {ls.switches_per_group} switches/group, "
          f"{ls.global_ports_per_switch} global ports/switch")
    print(f"  {ls.n_groups} groups x {ls.nodes_per_group} nodes = "
          f"{ls.n_endpoints:,} endpoints")
    print(f"  addressing limit: {ls.addressing_group_limit} groups -> "
          f"{ls.addressable_endpoints:,} usable endpoints")

    # --- the paper's machines ------------------------------------------
    rows = []
    for cfg in (malbec_paper(), shandy_paper()):
        topo = DragonflyTopology(cfg.params)
        local = len(topo.all_local_links())
        glob = len(topo.all_global_links())
        try:
            bisec = topo.bisection_bandwidth_bytes_ns(gbps(200)) / 1000
            a2a = topo.alltoall_bandwidth_bytes_ns(gbps(200)) / 1000
        except ValueError:
            bisec = a2a = float("nan")
        rows.append(
            [
                cfg.name,
                cfg.params.n_nodes,
                cfg.params.n_groups,
                local,
                glob,
                f"{bisec:.1f} TB/s",
                f"{a2a:.1f} TB/s",
            ]
        )
    print()
    print(
        render_table(
            ["system", "nodes", "groups", "local links", "global links",
             "bisection", "all-to-all"],
            rows,
            title="The paper's Slingshot systems (theoretical peaks, Fig. 6)",
        )
    )

    # --- custom what-if -------------------------------------------------
    print("\nWhat if we built a 16-group system with 8x32-port groups?")
    params = DragonflyParams(8, 8, 16, links_per_pair=2)
    topo = DragonflyTopology(params)
    print(f"  nodes: {params.n_nodes}, max ports/switch: "
          f"{params.max_ports_per_switch()}")
    print(f"  gateways from group 0 to group 1: {topo.gateways(0, 1)}")


if __name__ == "__main__":
    main()
