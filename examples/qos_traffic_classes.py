#!/usr/bin/env python3
"""Quality of service: protecting a latency-sensitive job with traffic
classes (paper §III-B, Figs. 13-14).

Two jobs share a tapered network: a small high-priority allreduce and a
bulk alltoall.  We run the scenario twice — both jobs in one traffic
class, then in two classes with guaranteed bandwidth — and report the
allreduce's slowdown.  The fluid model then reproduces Fig. 14's
bandwidth timeline exactly.

Run:  python examples/qos_traffic_classes.py
"""

from repro.core.traffic_classes import TrafficClass
from repro.flowsim import FluidBottleneck, FluidJob
from repro.network.fabric import LinkSpec
from repro.network.units import KiB, MS, gbps
from repro.systems import malbec_mini
from repro.workloads import alltoall_congestor, run_workload, split_nodes

#: The paper tapers Malbec to 25% of its bandwidth so the two jobs are
#: forced to interfere (§III-B); we taper the global links the same way.
TAPERED_GLOBAL = LinkSpec(gbps(200) * 0.25, 300.0, 48 * KiB)

#: interleaved placement, exactly like the paper's Fig. 13 setup
VICTIM_NODES, BULLY_NODES = split_nodes(list(range(64)), 32, "interleaved")


def tapered_config():
    classes = [
        TrafficClass("latency", min_share=0.5),
        TrafficClass("bulk", min_share=0.3),
    ]
    return malbec_mini(classes=classes, global_link=TAPERED_GLOBAL)


def allreduce_victim(iterations=10):
    def main(rank, record):
        for it in range(iterations):
            t0 = rank.sim.now
            yield from rank.allreduce(8)
            record(it, rank.sim.now - t0)

    main.name = "allreduce8B"
    return main


def run_des_scenario(separate_classes: bool) -> float:
    result = run_workload(
        tapered_config(),
        VICTIM_NODES,
        allreduce_victim(),
        aggressor_nodes=BULLY_NODES,
        aggressor=alltoall_congestor(256 * KiB),
        aggressor_ppn=2,
        victim_tc=0,
        aggressor_tc=1 if separate_classes else 0,
        warmup_ns=0.5 * MS,
        max_ns=200 * MS,
    )
    return result.mean()


def main() -> None:
    # --- packet-level: does a separate TC protect the allreduce? -------
    isolated = run_workload(
        tapered_config(),
        VICTIM_NODES,
        allreduce_victim(),
        max_ns=200 * MS,
    ).mean()
    same = run_des_scenario(separate_classes=False)
    separate = run_des_scenario(separate_classes=True)
    print("8B allreduce vs a 256KiB alltoall bully (packet simulation):")
    print(f"  isolated:            {isolated / 1e3:8.1f} us/iter")
    print(f"  same traffic class:  {same / 1e3:8.1f} us/iter  (impact {same / isolated:.2f}x)")
    print(f"  separate classes:    {separate / 1e3:8.1f} us/iter  (impact {separate / isolated:.2f}x)")

    # --- fluid model: Fig. 14's bandwidth timeline ----------------------
    print("\nFig. 14 fluid timeline (TC1 min 80%, TC2 min 10%, capacity 10):")
    classes = [
        TrafficClass("tc1", min_share=0.8),
        TrafficClass("tc2", min_share=0.1),
    ]
    bottleneck = FluidBottleneck(10.0, classes)
    job1 = bottleneck.add_job(FluidJob(start_ns=0.0, nbytes=200.0, tc=0, name="job1"))
    job2 = bottleneck.add_job(FluidJob(start_ns=5.0, nbytes=100.0, tc=1, name="job2"))
    bottleneck.run()
    for t in (2.0, 6.0, 30.0):
        print(
            f"  t={t:5.1f}: job1 rate {job1.rate_at(t):5.2f}, "
            f"job2 rate {job2.rate_at(t):5.2f}"
        )
    print(
        "  -> while both run, the split is 80/20: TC2's guaranteed 10%\n"
        "     plus the unreserved 10%, granted to the lowest-share class."
    )


if __name__ == "__main__":
    main()
