#!/usr/bin/env python3
"""Congestion study: how much does a bully job hurt its neighbours?

Reproduces the paper's core experiment (Figs. 8-10) in miniature: a
victim job shares the machine with a GPCNet-style congestor, and we
report the congestion impact C = Tc/Ti on Aries (no endpoint congestion
control) versus Slingshot.

Run:  python examples/congestion_study.py
"""

from repro.analysis import render_heatmap
from repro.systems import crystal_mini, malbec_mini
from repro.workloads import (
    allreduce_bench,
    alltoall_congestor,
    congestion_impact,
    incast_congestor,
    split_nodes,
)

NODES = list(range(64))
VICTIM = lambda: allreduce_bench(8, iterations=8)


def study(system_name, config):
    rows = []
    for policy in ("linear", "interleaved", "random"):
        row = []
        for aggressor_name, aggressor in (
            ("incast", incast_congestor()),
            ("all-to-all", alltoall_congestor()),
        ):
            victim_nodes, aggressor_nodes = split_nodes(NODES, 32, policy, seed=1)
            result = congestion_impact(
                config,
                victim_nodes,
                VICTIM(),
                aggressor_nodes,
                aggressor,
                max_ns=400e6,
            )
            row.append(result["impact"])
        rows.append(row)
    print()
    print(
        render_heatmap(
            ["linear", "interleaved", "random"],
            ["incast", "all-to-all"],
            rows,
            title=f"{system_name}: congestion impact on an 8B MPI_Allreduce "
            f"(50/50 victim/aggressor split)",
        )
    )


def main() -> None:
    print(
        "Victim: 8B allreduce on 32 nodes. Aggressor: 32 nodes running a\n"
        "persistent congestor. C = Tc/Ti (1.0 = unaffected)."
    )
    study("Aries (crystal-mini)", crystal_mini())
    study("Slingshot (malbec-mini)", malbec_mini())
    print(
        "\nTakeaways (matching the paper): incast wrecks Aries but not\n"
        "Slingshot; all-to-all congestion is absorbed by adaptive routing\n"
        "on both; spread-out allocations make interference worse."
    )


if __name__ == "__main__":
    main()
