#!/usr/bin/env python3
"""GPCNet-style network-noise report (paper §IV-B).

GPCNet summarizes a machine's congestion behaviour with three noise
ratios measured on a random-ring + allreduce victim.  The paper adopts
GPCNet's metric but widens the victim set; this example runs the
original GPCNet methodology on both simulated machines so the two
papers' views can be compared directly.

Run:  python examples/network_noise.py
"""

from repro.analysis import render_table
from repro.systems import crystal_mini, malbec_mini
from repro.workloads import gpcnet_report, split_nodes


def main() -> None:
    nodes = list(range(48))
    victim, aggressor = split_nodes(nodes, 24, "random", seed=3)
    rows = []
    for name, config in (("Aries", crystal_mini()), ("Slingshot", malbec_mini())):
        rep = gpcnet_report(config, victim, aggressor)
        rows.append(
            [
                name,
                f"{rep['latency_noise_p99']:.2f}x",
                f"{rep['bandwidth_noise']:.2f}x",
                f"{rep['allreduce_noise']:.2f}x",
            ]
        )
    print(
        render_table(
            ["system", "latency noise (p99)", "bandwidth noise", "allreduce noise"],
            rows,
            title="GPCNet noise ratios under an incast congestor "
            "(1.0 = congestion-free)",
        )
    )
    print(
        "\nGPCNet's two-victim view agrees with the paper's wider study:\n"
        "Slingshot's congestion control keeps every ratio near 1, while\n"
        "the network without endpoint congestion control degrades by\n"
        "one to two orders of magnitude."
    )


if __name__ == "__main__":
    main()
